// End-to-end tests of the ATM engine attached to the runtime: exact
// memoization (Static), in-flight deferral (IKT), the Dynamic training
// phase with tau-gated p doubling and output blacklisting, FixedP oracle
// behaviour, and statistics/memory accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "atm_lib.hpp"

namespace atm {
namespace {

using rt::Runtime;
using rt::RuntimeConfig;
using rt::TaskTypeDesc;

TEST(Engine, StaticMemoizesExactTwin) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "square", .memoizable = true, .atm = {}});

  std::vector<double> input{1.0, 2.0, 3.0};
  std::vector<double> out1(3), out2(3);
  std::atomic<int> executions{0};

  auto body = [&](std::vector<double>& out) {
    return [&input, &out, &executions] {
      executions.fetch_add(1);
      for (std::size_t i = 0; i < input.size(); ++i) out[i] = input[i] * input[i];
    };
  };
  runtime.submit(type, body(out1), {rt::in(input.data(), 3), rt::out(out1.data(), 3)});
  runtime.taskwait();
  runtime.submit(type, body(out2), {rt::in(input.data(), 3), rt::out(out2.data(), 3)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);  // the twin was served from the THT
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(runtime.counters().memoized, 1u);
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  ASSERT_EQ(engine.stats().reuse_creators.size(), 1u);
  EXPECT_EQ(engine.stats().reuse_creators[0], 0u);  // created by task id 0
}

TEST(Engine, StaticDistinguishesDifferentInputs) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "copy", .memoizable = true, .atm = {}});

  double in1 = 5.0, in2 = 6.0, out1 = 0, out2 = 0;
  runtime.submit(type, [&] { out1 = in1; },
                 {rt::in(&in1, 1), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { out2 = in2; },
                 {rt::in(&in2, 1), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(out1, 5.0);
  EXPECT_EQ(out2, 6.0);
  EXPECT_EQ(runtime.counters().memoized, 0u);
}

TEST(Engine, OffModeNeverInterferes) {
  AtmEngine engine({.mode = AtmMode::Off});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  double in = 1.0, out = 0;
  std::atomic<int> executions{0};
  for (int i = 0; i < 3; ++i) {
    runtime.submit(type, [&] { executions.fetch_add(1); out = in; },
                   {rt::in(&in, 1), rt::out(&out, 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(engine.stats().keys_computed, 0u);
}

TEST(Engine, NonMemoizableTypeBypassed) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = false, .atm = {}});
  double in = 1.0, out = 0;
  std::atomic<int> executions{0};
  for (int i = 0; i < 2; ++i) {
    runtime.submit(type, [&] { executions.fetch_add(1); out = in; },
                   {rt::in(&in, 1), rt::out(&out, 1)});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(engine.stats().keys_computed, 0u);
}

TEST(Engine, IktDefersOntoInFlightTwin) {
  AtmEngine engine({.mode = AtmMode::Static, .use_ikt = true});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "slow", .memoizable = true, .atm = {}});

  std::vector<double> input{4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto slow_body = [&](double* out) {
    return [&input, out, &executions] {
      executions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      *out = input[0] * 10.0;
    };
  };
  // Both submitted back to back: the second finds the first in flight.
  runtime.submit(type, slow_body(&out1), {rt::in(input.data(), 1), rt::out(&out1, 1)});
  runtime.submit(type, slow_body(&out2), {rt::in(input.data(), 1), rt::out(&out2, 1)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(out1, 40.0);
  EXPECT_EQ(out2, 40.0);
  EXPECT_EQ(runtime.counters().deferred, 1u);
  EXPECT_EQ(engine.stats().ikt_hits, 1u);
}

TEST(Engine, IktDisabledExecutesTwinsConcurrently) {
  AtmEngine engine({.mode = AtmMode::Static, .use_ikt = false});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "slow", .memoizable = true, .atm = {}});
  std::vector<double> input{4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto body = [&](double* out) {
    return [&input, out, &executions] {
      executions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      *out = input[0];
    };
  };
  runtime.submit(type, body(&out1), {rt::in(input.data(), 1), rt::out(&out1, 1)});
  runtime.submit(type, body(&out2), {rt::in(input.data(), 1), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(executions.load(), 2);  // redundant execution, but correct
  EXPECT_EQ(out1, out2);
}

TEST(Engine, DynamicTrainsThenMemoizes) {
  AtmEngine engine({.mode = AtmMode::Dynamic});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {.l_training = 1, .tau_max = 0.01}});

  std::vector<double> input{2.0, 3.0};
  std::vector<double> outs(4, 0.0);
  std::atomic<int> executions{0};
  auto submit_one = [&](int i) {
    double* out = &outs[i];
    runtime.submit(type,
                   [&input, out, &executions] {
                     executions.fetch_add(1);
                     *out = input[0] + input[1];
                   },
                   {rt::in(input.data(), 2), rt::out(out, 1)});
    runtime.taskwait();
  };
  submit_one(0);  // miss, executes, inserts
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Training);
  submit_one(1);  // training hit: executes, verifies, streak -> steady
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Steady);
  submit_one(2);  // steady hit: memoized
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(outs[2], 5.0);
  EXPECT_EQ(engine.stats().training_hits, 1u);
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), kMinP);  // never had to grow
}

TEST(Engine, DynamicFailureDoublesPAndBlacklists) {
  AtmEngine engine({.mode = AtmMode::Dynamic, .type_aware = true});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "chaotic", .memoizable = true, .atm = {.l_training = 100, .tau_max = 0.01}});

  // Two inputs that differ only in low-order mantissa bytes: at p = 2^-15
  // (1 sampled byte, the MSB) their keys collide, but the task output
  // amplifies the difference -> tau >> tau_max.
  std::vector<double> in_a(8, 1.0);
  std::vector<double> in_b(8, 1.0);
  in_b[7] = 1.0 + 1e-13;
  double out_a = 0, out_b = 0;

  runtime.submit(type, [&] { out_a = (in_a[7] - 1.0) * 1e15; },
                 {rt::in(in_a.data(), 8), rt::out(&out_a, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { out_b = (in_b[7] - 1.0) * 1e15; },
                 {rt::in(in_b.data(), 8), rt::out(&out_b, 1)});
  runtime.taskwait();

  EXPECT_EQ(engine.stats().training_hits, 1u);
  EXPECT_EQ(engine.stats().training_failures, 1u);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), 2 * kMinP);
  EXPECT_EQ(engine.blacklist_size(*type), 1u);

  // The blacklisted output pointer is never memoized again.
  runtime.submit(type, [&] { out_b = 7.0; },
                 {rt::in(in_b.data(), 8), rt::out(&out_b, 1)});
  runtime.taskwait();
  EXPECT_GE(engine.stats().blacklist_skips, 1u);
  EXPECT_EQ(out_b, 7.0);
}

TEST(Engine, FixedPUsesConstantPImmediately) {
  AtmEngine engine({.mode = AtmMode::FixedP, .fixed_p = 0.25});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  std::vector<double> input{1.0, 2.0, 3.0, 4.0};
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  auto body = [&](double* o) {
    return [&input, o, &executions] {
      executions.fetch_add(1);
      *o = input[0];
    };
  };
  runtime.submit(type, body(&out1), {rt::in(input.data(), 4), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, body(&out2), {rt::in(input.data(), 4), rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(executions.load(), 1);  // no training phase: hit right away
  EXPECT_EQ(engine.phase(*type), TrainingPhase::Steady);
  EXPECT_DOUBLE_EQ(engine.current_p(*type), 0.25);
}

TEST(Engine, ThtPersistsAcrossTaskwait) {
  // The paper's iterative apps rely on reuse across barriers.
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  std::vector<float> input(256, 1.5f);
  std::vector<float> out(256);
  std::atomic<int> executions{0};
  for (int round = 0; round < 5; ++round) {
    runtime.submit(type,
                   [&] {
                     executions.fetch_add(1);
                     for (std::size_t i = 0; i < input.size(); ++i) out[i] = 2 * input[i];
                   },
                   {rt::in(input.data(), input.size()), rt::out(out.data(), out.size())});
    runtime.taskwait();
  }
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(runtime.counters().memoized, 4u);
}

TEST(Engine, MemoryAccountingIncludesAllStructures) {
  AtmEngine engine({.mode = AtmMode::Static, .arena_reserve_bytes = 0});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  const std::size_t before = engine.memory_bytes();
  std::vector<float> input(1024, 1.0f);
  std::vector<float> out(1024);
  runtime.submit(type,
                 [&] {
                   for (std::size_t i = 0; i < out.size(); ++i) out[i] = input[i];
                 },
                 {rt::in(input.data(), 1024), rt::out(out.data(), 1024)});
  runtime.taskwait();
  EXPECT_GE(engine.memory_bytes(), before + 4096);  // snapshot + sampler order
}

// --- tolerance-quantized keys through the engine ---------------------------

TEST(EngineTolerance, JitteredTwinHitsUnderToleranceKeys) {
  AtmEngine engine({.mode = AtmMode::Static, .tolerance_rel = 1e-3});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});

  std::vector<double> a(16), b(16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 1.0 + static_cast<double>(i);
    b[i] = a[i] * (1.0 + 1e-7);  // inside the 1e-3 cell, outside bit equality
  }
  std::vector<double> out1(16), out2(16);
  std::atomic<int> executions{0};
  auto body = [&executions](const std::vector<double>& in, std::vector<double>& out) {
    return [&in, &out, &executions] {
      executions.fetch_add(1);
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = 2.0 * in[i];
    };
  };
  runtime.submit(type, body(a, out1), {rt::in(a.data(), 16), rt::out(out1.data(), 16)});
  runtime.taskwait();
  runtime.submit(type, body(b, out2), {rt::in(b.data(), 16), rt::out(out2.data(), 16)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);  // the jittered twin was served
  EXPECT_EQ(out1, out2);            // ... with the stored outputs
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  EXPECT_EQ(engine.stats().tolerance_hits, 1u);
  EXPECT_EQ(engine.stats().probe_hits, 0u);  // primary key matched directly
}

TEST(EngineTolerance, NearBoundaryTwinHitsViaProbe) {
  // The first task's element sits just below a quantization boundary, the
  // twin's just above: primary keys differ, the neighbor probe finds it.
  AtmEngine engine(
      {.mode = AtmMode::Static, .tolerance_abs = 0.5, .tolerance_probes = 2});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});

  double a = 7.45, b = 7.55;  // boundary between cells 7 and 8 is at 7.5
  double out1 = 0, out2 = 0;
  std::atomic<int> executions{0};
  runtime.submit(type, [&] { executions.fetch_add(1); out1 = a; },
                 {rt::in(&a, 1), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { executions.fetch_add(1); out2 = b; },
                 {rt::in(&b, 1), rt::out(&out2, 1)});
  runtime.taskwait();

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(out2, 7.45);  // served from the stored neighbor entry
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  EXPECT_EQ(engine.stats().tolerance_hits, 1u);
  EXPECT_EQ(engine.stats().probe_hits, 1u);
}

TEST(EngineTolerance, PerTypeOverrideForcesExactKeys) {
  // Engine-wide tolerance on, but the type pins tolerance to 0: jittered
  // twins must NOT match (exact raw-byte keys), identical twins still do.
  AtmEngine engine({.mode = AtmMode::Static, .tolerance_rel = 1e-3});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* exact_type = runtime.register_type(
      {.name = "exact",
       .memoizable = true,
       .atm = {.tolerance_rel = 0.0, .tolerance_abs = 0.0}});

  std::vector<double> a(8, 3.0);
  auto b = a;
  for (auto& v : b) v *= 1.0 + 1e-7;
  std::vector<double> out(8);
  std::atomic<int> executions{0};
  auto submit = [&](std::vector<double>& in) {
    runtime.submit(exact_type, [&] { executions.fetch_add(1); },
                   {rt::in(in.data(), 8), rt::out(out.data(), 8)});
    runtime.taskwait();
  };
  submit(a);
  submit(b);  // jittered: must execute
  submit(a);  // exact twin: must hit
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(engine.stats().tht_hits, 1u);
  EXPECT_EQ(engine.stats().tolerance_hits, 0u);  // the hit was an exact one
}

TEST(EngineTolerance, PerTypeOverrideEnablesToleranceKeys) {
  // Engine-wide exact keys, but the type opts into tolerance matching.
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* tol_type = runtime.register_type(
      {.name = "tol", .memoizable = true, .atm = {.tolerance_rel = 1e-3}});

  std::vector<double> a(8, 3.0);
  auto b = a;
  for (auto& v : b) v *= 1.0 + 1e-7;
  std::vector<double> out(8);
  std::atomic<int> executions{0};
  auto submit = [&](std::vector<double>& in) {
    runtime.submit(tol_type, [&] { executions.fetch_add(1); },
                   {rt::in(in.data(), 8), rt::out(out.data(), 8)});
    runtime.taskwait();
  };
  submit(a);
  submit(b);  // inside the cell: must hit
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(engine.stats().tolerance_hits, 1u);
}

TEST(Engine, StatsResetClearsCounters) {
  AtmEngine engine({.mode = AtmMode::Static});
  Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "t", .memoizable = true, .atm = {}});
  double in = 1, out = 0;
  runtime.submit(type, [&] { out = in; }, {rt::in(&in, 1), rt::out(&out, 1)});
  runtime.taskwait();
  EXPECT_GT(engine.stats().keys_computed, 0u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().keys_computed, 0u);
  EXPECT_TRUE(engine.stats().reuse_creators.empty());
}

}  // namespace
}  // namespace atm

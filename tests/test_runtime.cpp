// Tests for the task runtime: submission, dependence-driven ordering,
// taskwait barriers, counters, parallel execution, and stress tests with
// random DAGs whose serialization is verified via a per-buffer write log.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"

namespace atm::rt {
namespace {

TEST(Runtime, RunsASingleTask) {
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::atomic<int> ran{0};
  int data = 0;
  rt.submit(type, [&] { ran = 1; }, {out(&data, 1)});
  rt.taskwait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(rt.counters().submitted, 1u);
  EXPECT_EQ(rt.counters().executed, 1u);
}

TEST(Runtime, TaskwaitOnEmptyGraphReturns) {
  Runtime rt({.num_threads = 1});
  rt.taskwait();  // must not hang
  SUCCEED();
}

TEST(Runtime, DependentChainExecutesInOrder) {
  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int cell = 0;
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 16; ++i) {
    rt.submit(type,
              [&, i] {
                std::lock_guard<std::mutex> lock(m);
                order.push_back(i);
              },
              {inout(&cell, 1)});
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Runtime, IndependentTasksAllComplete) {
  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  constexpr int kTasks = 200;
  std::vector<int> cells(kTasks, 0);
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.submit(type,
              [&, i] {
                cells[i] = i + 1;
                done.fetch_add(1);
              },
              {out(&cells[i], 1)});
  }
  rt.taskwait();
  EXPECT_EQ(done.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(cells[i], i + 1);
}

TEST(Runtime, IndependentTasksRunConcurrently) {
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  int a = 0, b = 0;
  auto body = [&] {
    const int now = concurrent.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    concurrent.fetch_sub(1);
  };
  rt.submit(type, body, {out(&a, 1)});
  rt.submit(type, body, {out(&b, 1)});
  rt.taskwait();
  EXPECT_EQ(peak.load(), 2);
}

TEST(Runtime, FanOutFanIn) {
  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int src = 0;
  int mid[8] = {};
  int sink = 0;
  rt.submit(type, [&] { src = 42; }, {out(&src, 1)});
  for (int i = 0; i < 8; ++i) {
    rt.submit(type, [&, i] { mid[i] = src + i; },
              {in(static_cast<const int*>(&src), 1), out(&mid[i], 1)});
  }
  std::vector<DataAccess> sink_accesses;
  for (int i = 0; i < 8; ++i) sink_accesses.push_back(in(static_cast<const int*>(&mid[i]), 1));
  sink_accesses.push_back(out(&sink, 1));
  rt.submit(type,
            [&] {
              for (int i = 0; i < 8; ++i) sink += mid[i];
            },
            std::move(sink_accesses));
  rt.taskwait();
  EXPECT_EQ(sink, 8 * 42 + 28);
}

TEST(Runtime, TaskwaitActsAsBarrierBetweenPhases) {
  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int x = 0;
  rt.submit(type, [&] { x = 1; }, {out(&x, 1)});
  rt.taskwait();
  EXPECT_EQ(x, 1);  // barrier: effect visible to the master
  rt.submit(type, [&] { x = 2; }, {out(&x, 1)});
  rt.taskwait();
  EXPECT_EQ(x, 2);
}

TEST(Runtime, CountersAccumulate) {
  Runtime rt({.num_threads = 2});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
  int buf[32];
  for (int i = 0; i < 32; ++i) rt.submit(type, [] {}, {out(&buf[i], 1)});
  rt.taskwait();
  const auto c = rt.counters();
  EXPECT_EQ(c.submitted, 32u);
  EXPECT_EQ(c.executed, 32u);
  EXPECT_EQ(c.memoized, 0u);
}

TEST(Runtime, TypeRegistrationAssignsDenseIds) {
  Runtime rt({.num_threads = 1});
  const auto* a = rt.register_type({.name = "a", .memoizable = false, .atm = {}});
  const auto* b = rt.register_type({.name = "b", .memoizable = true, .atm = {}});
  EXPECT_EQ(a->id(), 0u);
  EXPECT_EQ(b->id(), 1u);
  EXPECT_EQ(a->name(), "a");
  EXPECT_FALSE(a->memoizable());
  EXPECT_TRUE(b->memoizable());
  EXPECT_EQ(rt.type_count(), 2u);
}

TEST(Runtime, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  int data = 0;
  {
    Runtime rt({.num_threads = 2});
    const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});
    for (int i = 0; i < 10; ++i) {
      rt.submit(type, [&] { ran.fetch_add(1); }, {inout(&data, 1)});
    }
    // no taskwait: the destructor must wait for completion
  }
  EXPECT_EQ(ran.load(), 10);
}

// Random-DAG stress: tasks append their id to a per-buffer log; for each
// buffer, the log of its writers must respect the dependence order implied
// by submission (writers to the same buffer are totally ordered).
class RuntimeStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeStress, ConflictingWritersSerialized) {
  std::mt19937_64 rng(GetParam());
  constexpr int kBuffers = 8;
  constexpr int kTasks = 300;

  Runtime rt({.num_threads = 4});
  const auto* type = rt.register_type({.name = "t", .memoizable = false, .atm = {}});

  int buffers[kBuffers] = {};
  std::vector<std::vector<int>> logs(kBuffers);
  std::mutex log_mutex[kBuffers];
  std::vector<int> expected[kBuffers];

  for (int i = 0; i < kTasks; ++i) {
    const int b = static_cast<int>(rng() % kBuffers);
    expected[b].push_back(i);
    rt.submit(type,
              [&, i, b] {
                std::lock_guard<std::mutex> lock(log_mutex[b]);
                logs[b].push_back(i);
              },
              {inout(&buffers[b], 1)});
  }
  rt.taskwait();

  for (int b = 0; b < kBuffers; ++b) {
    EXPECT_EQ(logs[b], expected[b]) << "buffer " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeStress, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace atm::rt

// Tests for the deterministic RNG (common/rng.hpp): reproducibility,
// bounds, bias, and shuffle permutation properties. ATM's sampled keys and
// every workload generator depend on these invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace atm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(4);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FloatsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float(2.0f, 5.0f);
    EXPECT_GE(f, 2.0f);
    EXPECT_LT(f, 5.0f);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(9);
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int fixed_points = 0;
  for (int i = 0; i < 1000; ++i) fixed_points += v[i] == i;
  EXPECT_LT(fixed_points, 20);  // expected ~1 fixed point
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a(100), b(100);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng ra(10), rb(10);
  ra.shuffle(a);
  rb.shuffle(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace atm

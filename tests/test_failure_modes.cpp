// Documented-limitation tests (paper §III-E): what goes wrong when the
// programmer violates ATM's contract. These tests *assert the failure
// modes manifest as the paper describes* — they are executable
// documentation, not bugs.
#include <gtest/gtest.h>

#include <atomic>

#include "atm_lib.hpp"

namespace atm {
namespace {

TEST(FailureModes, UndeclaredOutputGoesStaleWhenMemoized) {
  // "If a variable is modified by a task, but not specified in the data
  // outputs ... then task approximation will provide wrong results."
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "leaky", .memoizable = true, .atm = {}});

  double in = 1.0;
  double declared = 0.0;
  double undeclared = 0.0;  // written by the task but not annotated

  auto body = [&] {
    declared = in * 2;
    undeclared += 1.0;  // side effect invisible to the runtime
  };
  runtime.submit(type, body, {rt::in(&in, 1), rt::out(&declared, 1)});
  runtime.taskwait();
  runtime.submit(type, body, {rt::in(&in, 1), rt::out(&declared, 1)});
  runtime.taskwait();

  EXPECT_EQ(runtime.counters().memoized, 1u);
  EXPECT_EQ(declared, 2.0);     // the declared output is served correctly
  EXPECT_EQ(undeclared, 1.0);   // the hidden side effect DID NOT happen again
}

TEST(FailureModes, NonDeterministicTaskGetsFirstResultReplayed) {
  // "Task execution has to be deterministic ... tasks that make use of
  // random values should not use ATM."
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "racy", .memoizable = true, .atm = {}});

  double in = 1.0;
  static std::atomic<int> global_counter{0};
  global_counter = 0;
  double out1 = 0, out2 = 0;

  auto body = [&](double* out) {
    return [&in, out] { *out = in + global_counter.fetch_add(1); };
  };
  runtime.submit(type, body(&out1), {rt::in(&in, 1), rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, body(&out2), {rt::in(&in, 1), rt::out(&out2, 1)});
  runtime.taskwait();

  // Without ATM, out2 would be 2.0 (counter advanced). With memoization the
  // first result is replayed: identical inputs => identical (stale) output.
  EXPECT_EQ(out1, 1.0);
  EXPECT_EQ(out2, 1.0);
  EXPECT_EQ(global_counter.load(), 1);
}

TEST(FailureModes, ZeroInputTasksAllShareOneKey) {
  // A task type with no declared inputs hashes an empty byte string: every
  // instance aliases. The first result is replayed for all of them —
  // consistent, and exactly why inputs must be fully declared.
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "noin", .memoizable = true, .atm = {}});

  double out1 = 0, out2 = 0;
  runtime.submit(type, [&] { out1 = 11.0; }, {rt::out(&out1, 1)});
  runtime.taskwait();
  runtime.submit(type, [&] { out2 = 22.0; }, {rt::out(&out2, 1)});
  runtime.taskwait();
  EXPECT_EQ(out1, 11.0);
  EXPECT_EQ(out2, 11.0);  // replayed, body never ran
  EXPECT_EQ(runtime.counters().memoized, 1u);
}

TEST(FailureModes, OutputShapeChangeIsDetectedNotCorrupted) {
  // Same type + same input bytes but a different output size: the stored
  // snapshot must NOT be splatted over the smaller buffer. The engine
  // treats shape mismatch as a miss and executes.
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 1});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "shapes", .memoizable = true, .atm = {}});

  std::vector<double> in{1.0, 2.0};
  std::vector<double> big(4), small(2);
  std::atomic<int> executions{0};
  runtime.submit(type,
                 [&] {
                   executions.fetch_add(1);
                   for (auto& v : big) v = 9.0;
                 },
                 {rt::in(in.data(), 2), rt::out(big.data(), 4)});
  runtime.taskwait();
  runtime.submit(type,
                 [&] {
                   executions.fetch_add(1);
                   for (auto& v : small) v = 5.0;
                 },
                 {rt::in(in.data(), 2), rt::out(small.data(), 2)});
  runtime.taskwait();
  EXPECT_EQ(executions.load(), 2);  // no false sharing across shapes
  EXPECT_EQ(small[0], 5.0);
  EXPECT_EQ(small[1], 5.0);
}

TEST(FailureModes, AliasedOutputStillCompletesGraph) {
  // Two identical tasks writing the SAME output region: the dependence
  // tracker serializes them; the second memoizes from the first. The final
  // buffer content equals a serial execution's.
  AtmEngine engine({.mode = AtmMode::Static});
  rt::Runtime runtime({.num_threads = 2});
  runtime.attach_memoizer(&engine);
  const auto* type = runtime.register_type(
      {.name = "same_out", .memoizable = true, .atm = {}});
  std::vector<double> in{2.0};
  double out = 0.0;
  for (int i = 0; i < 2; ++i) {
    runtime.submit(type, [&] { out = in[0] * 3; },
                   {rt::in(in.data(), 1), rt::out(&out, 1)});
  }
  runtime.taskwait();
  EXPECT_EQ(out, 6.0);
}

}  // namespace
}  // namespace atm

// Unit and property tests for the lookup3-style hash (common/hash.hpp):
// determinism, chunking invariance, length binding, seed sensitivity,
// avalanche behaviour and bucket uniformity — the statistical properties
// ATM's key generation relies on (docs/DESIGN.md §2: validated by properties, not
// canonical vectors).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace atm {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  return v;
}

TEST(Hash, DeterministicAcrossCalls) {
  const auto data = random_bytes(1000, 1);
  EXPECT_EQ(hash_bytes(data), hash_bytes(data));
  EXPECT_EQ(hash_bytes(data, 42), hash_bytes(data, 42));
}

TEST(Hash, SeedChangesDigest) {
  const auto data = random_bytes(64, 2);
  EXPECT_NE(hash_bytes(data, 1), hash_bytes(data, 2));
}

TEST(Hash, EmptyInputIsValid) {
  HashStream s;
  const HashKey k = s.finalize();
  HashStream s2(99);
  EXPECT_NE(k, s2.finalize());  // seed still matters for empty messages
}

TEST(Hash, ChunkingDoesNotAffectDigest) {
  const auto data = random_bytes(997, 3);  // prime size: exercises tails
  const HashKey whole = hash_bytes(data);

  for (std::size_t chunk : {1u, 2u, 3u, 7u, 11u, 12u, 13u, 64u, 500u}) {
    HashStream s;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n = std::min(chunk, data.size() - off);
      s.update(std::span<const std::uint8_t>(data.data() + off, n));
      off += n;
    }
    EXPECT_EQ(whole, s.finalize()) << "chunk size " << chunk;
  }
}

TEST(Hash, ByteAtATimeMatchesBulk) {
  const auto data = random_bytes(123, 4);
  HashStream s;
  for (std::uint8_t b : data) s.update(b);
  EXPECT_EQ(s.finalize(), hash_bytes(data));
}

TEST(Hash, LengthBindsDigest) {
  // Zero padding must not alias: {0}, {0,0}, ..., {0 x 13} all distinct.
  std::vector<HashKey> keys;
  for (std::size_t n = 0; n <= 13; ++n) {
    std::vector<std::uint8_t> zeros(n, 0);
    keys.push_back(hash_bytes(zeros));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    }
  }
}

TEST(Hash, ResetReproduces) {
  const auto data = random_bytes(50, 5);
  HashStream s(7);
  s.update(data);
  const HashKey first = s.finalize();
  s.reset(7);
  s.update(data);
  EXPECT_EQ(first, s.finalize());
}

TEST(Hash, MessageLengthTracksBytes) {
  HashStream s;
  s.update(random_bytes(77, 6));
  EXPECT_EQ(s.message_length(), 77u);
}

TEST(Hash, AvalancheSingleBitFlip) {
  // Flipping one input bit should flip ~32 of the 64 output bits on
  // average. Allow a generous band; this catches gross mixing bugs.
  const auto base = random_bytes(256, 7);
  const HashKey k0 = hash_bytes(base);
  double total_flips = 0.0;
  int samples = 0;
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    auto mutated = base;
    const std::size_t byte = rng.next_below(mutated.size());
    const int bit = static_cast<int>(rng.next_below(8));
    mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
    total_flips += std::popcount(k0 ^ hash_bytes(mutated));
    ++samples;
  }
  const double mean = total_flips / samples;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 40.0);
}

TEST(Hash, BucketUniformityLowBits) {
  // ATM indexes the THT with the low N bits (paper §III-A): the low byte
  // must be close to uniform over random messages.
  constexpr int kBuckets = 256;
  constexpr int kSamples = 256 * 64;
  std::vector<int> counts(kBuckets, 0);
  Rng rng(9);
  for (int i = 0; i < kSamples; ++i) {
    const auto data = random_bytes(24, rng.next_u64());
    ++counts[hash_bytes(data) & (kBuckets - 1)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // dof = 255; mean 255, stddev ~22.6. 5 sigma ~ 368.
  EXPECT_LT(chi2, 380.0);
}

TEST(Hash, NoCollisionsInModestKeySpace) {
  // 2^16 random 32-byte messages: expected birthday collisions in a 64-bit
  // space ~ 1e-10. Any collision indicates a broken digest.
  std::vector<HashKey> keys;
  keys.reserve(1 << 16);
  Rng rng(10);
  for (int i = 0; i < (1 << 16); ++i) {
    keys.push_back(hash_bytes(random_bytes(32, rng.next_u64())));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Splitmix, KnownProperties) {
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

class HashSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashSizeSweep, TailHandlingAllResidues) {
  // Sizes covering every residue mod 12 (the block size): the digest must
  // be stable under re-chunking and unique per content.
  const std::size_t n = GetParam();
  const auto a = random_bytes(n, 11 + n);
  auto b = a;
  const HashKey ka = hash_bytes(a);
  EXPECT_EQ(ka, hash_bytes(b));
  if (n > 0) {
    b[n / 2] ^= 0x01;
    EXPECT_NE(ka, hash_bytes(b));
  }
}

INSTANTIATE_TEST_SUITE_P(AllResidues, HashSizeSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 23, 24, 25, 100, 1000, 4096));

}  // namespace
}  // namespace atm

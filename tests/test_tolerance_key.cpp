// Property tests for tolerance-quantized memo keys (src/atm/tolerance.hpp,
// the tolerance overloads of compute_key):
//
//  * quantization guarantees — inputs within epsilon of a cell center share
//    the cell; inputs separated by more than a full cell never do; special
//    value classes (NaN/Inf/denormal/zero) never alias finite normals;
//  * key-level consequences — near-equal tasks get equal keys, clearly
//    separated tasks get different keys w.h.p.;
//  * epsilon = 0 is bit-identical to the exact raw-bytes digests on both
//    gather paths;
//  * the plan path and the order path agree on the FULL KeyResult (primary
//    key and probe list) in tolerance mode — the Zobrist XOR digest is
//    gather-order independent, unlike the exact digest;
//  * near-boundary values emit a probe list that contains the neighboring
//    cell's primary key (the multi-probe containment property).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "atm/hash_key.hpp"
#include "atm/input_sampler.hpp"
#include "atm/tolerance.hpp"
#include "common/rng.hpp"

namespace atm {
namespace {

constexpr std::uint64_t kSeed = 0x5eedULL;

rt::Task make_task(const double* data, std::size_t n) {
  rt::Task t;
  t.accesses.push_back(rt::in(data, n));
  return t;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

Quantized quant(double v, const ToleranceSpec& spec, bool subnormal = false) {
  return quantize_value(v, bits_of(v), spec, subnormal);
}

// --- quantize_value: grid guarantees ---------------------------------------

TEST(ToleranceQuantize, AbsoluteWithinEpsilonOfCenterSharesCell) {
  const ToleranceSpec spec{.abs = 1e-3};
  Rng rng(kSeed);
  for (int i = 0; i < 2000; ++i) {
    // Random cell center k * 2*eps, jittered strictly inside +-eps.
    const double center =
        static_cast<double>(static_cast<std::int64_t>(rng.next_below(2'000'001)) -
                            1'000'000) *
        2.0 * spec.abs;
    const double jitter = rng.next_double(-0.99, 0.99) * spec.abs;
    EXPECT_EQ(quant(center, spec).cell, quant(center + jitter, spec).cell)
        << center << " + " << jitter;
  }
}

TEST(ToleranceQuantize, AbsoluteSeparationBeyondTwoEpsilon) {
  const ToleranceSpec spec{.abs = 1e-3};
  Rng rng(kSeed + 1);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.next_double(-50.0, 50.0);
    const double gap = rng.next_double(2.001, 10.0) * spec.abs;
    EXPECT_NE(quant(a, spec).cell, quant(a + gap, spec).cell) << a << " gap " << gap;
  }
}

TEST(ToleranceQuantize, RelativeWithinEpsilonOfCenterSharesCell) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double ratio = (1.0 + spec.rel) * (1.0 + spec.rel);
  Rng rng(kSeed + 2);
  for (int i = 0; i < 2000; ++i) {
    // Random cell center ratio^k, jittered by a factor strictly inside
    // (1/(1+eps), 1+eps) — the cell's log-space half-width is log1p(eps).
    const auto k = static_cast<int>(rng.next_below(201)) - 100;
    const double sign = rng.next_below(2) != 0 ? -1.0 : 1.0;
    const double center = sign * std::pow(ratio, k);
    const double factor = 1.0 + rng.next_double(-0.9, 0.9) * spec.rel;
    EXPECT_EQ(quant(center, spec).cell, quant(center * factor, spec).cell)
        << center << " * " << factor;
  }
}

TEST(ToleranceQuantize, RelativeSeparationBeyondCellRatio) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double ratio = (1.0 + spec.rel) * (1.0 + spec.rel);
  Rng rng(kSeed + 3);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.next_double(1e-6, 1e6);
    const double factor = ratio * rng.next_double(1.001, 3.0);
    EXPECT_NE(quant(a, spec).cell, quant(a * factor, spec).cell) << a << " * " << factor;
  }
}

TEST(ToleranceQuantize, RelativeSignsNeverAlias) {
  const ToleranceSpec spec{.rel = 1e-2};
  for (double v : {1.0, 0.5, 123.25, 1e-9, 7e11}) {
    EXPECT_NE(quant(v, spec).cell, quant(-v, spec).cell) << v;
  }
}

// --- quantize_value: special classes stay isolated -------------------------

TEST(ToleranceQuantize, SpecialClassesNeverAliasFiniteNormals) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  for (const ToleranceSpec spec : {ToleranceSpec{.rel = 1e-3}, ToleranceSpec{.abs = 1e-3}}) {
    std::vector<std::uint64_t> specials{quant(nan, spec).cell, quant(inf, spec).cell,
                                        quant(-inf, spec).cell,
                                        quant(denorm, spec, true).cell};
    Rng rng(kSeed + 4);
    for (int i = 0; i < 500; ++i) {
      const double v = rng.next_double(-1e9, 1e9);
      if (v == 0.0) continue;
      const std::uint64_t cell = quant(v, spec).cell;
      for (std::uint64_t s : specials) EXPECT_NE(cell, s) << v;
    }
    // The classes are also distinct from each other.
    for (std::size_t i = 0; i < specials.size(); ++i) {
      for (std::size_t j = i + 1; j < specials.size(); ++j) {
        EXPECT_NE(specials[i], specials[j]) << i << " vs " << j;
      }
    }
  }
}

TEST(ToleranceQuantize, AllNansShareOneCell) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  EXPECT_EQ(quant(qnan, spec).cell, quant(-qnan, spec).cell);
  EXPECT_EQ(quant(qnan, spec).cell, quant(snan, spec).cell);
}

TEST(ToleranceQuantize, DenormalsMatchExactly) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double d1 = std::numeric_limits<double>::denorm_min();
  const double d2 = 2.0 * d1;
  EXPECT_EQ(quant(d1, spec, true).cell, quant(d1, spec, true).cell);
  EXPECT_NE(quant(d1, spec, true).cell, quant(d2, spec, true).cell);
}

TEST(ToleranceQuantize, RelativeZeroGetsItsOwnCell) {
  const ToleranceSpec spec{.rel = 1e-3};
  EXPECT_NE(quant(0.0, spec).cell, quant(1e-300, spec).cell);
  EXPECT_EQ(quant(0.0, spec).cell, quant(-0.0, spec).cell);
}

TEST(ToleranceQuantize, AbsoluteZeroSharesCellZeroWithTinyValues) {
  // The absolute grid treats zero like any grid value: cell 0 covers
  // (-eps, eps), so a tiny value within eps matches zero — by design.
  const ToleranceSpec spec{.abs = 1e-3};
  EXPECT_EQ(quant(0.0, spec).cell, quant(0.5e-3, spec).cell);
}

TEST(ToleranceQuantize, NeighborIsTheAdjacentCell) {
  const ToleranceSpec spec{.abs = 0.5};
  // 0.9 lives in cell 1 (center 1.0, width 1.0), below center: neighbor is
  // cell 0; 1.2 is above center: neighbor is cell 2.
  const Quantized below = quant(0.9, spec);
  const Quantized above = quant(1.2, spec);
  ASSERT_TRUE(below.probeable);
  ASSERT_TRUE(above.probeable);
  EXPECT_EQ(below.neighbor, quant(0.1, spec).cell);
  EXPECT_EQ(above.neighbor, quant(2.1, spec).cell);
  EXPECT_EQ(below.cell, above.cell);
}

// --- key level: epsilon = 0 delegates to the exact digest ------------------

TEST(ToleranceKey, InactiveSpecIsBitIdenticalToExactKeys) {
  std::vector<double> a(96);
  Rng rng(kSeed + 5);
  for (auto& v : a) v = rng.next_double(-10.0, 10.0);
  const auto t = make_task(a.data(), a.size());
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(t);
  const auto& order = sampler.order_for(0, layout);
  const ToleranceSpec off{};  // rel = abs = 0
  for (double p : {1.0, 0.5, 0.125, 1.0 / 4096}) {
    const auto exact = compute_key(t, order, p, 9);
    const auto tol = compute_key(t, order, p, 9, off);
    EXPECT_EQ(exact.key, tol.key) << p;
    EXPECT_EQ(exact.bytes_hashed, tol.bytes_hashed) << p;
    EXPECT_EQ(tol.probe_count, 0u) << p;

    const GatherPlan& plan = sampler.plan_for(0, layout, p);
    EXPECT_EQ(compute_key(t, plan, 9).key, compute_key(t, plan, 9, off).key) << p;
  }
}

// --- key level: near-equal inputs, equal keys ------------------------------

TEST(ToleranceKey, InputsWithinEpsilonOfCentersGetEqualKeys) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double ratio = (1.0 + spec.rel) * (1.0 + spec.rel);
  Rng rng(kSeed + 6);
  std::vector<double> a(64), b(64);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Both tasks sit in the same cell: center ratio^k times a sub-epsilon
    // factor each.
    const auto k = static_cast<int>(rng.next_below(41)) - 20;
    const double center = std::pow(ratio, k);
    a[i] = center * (1.0 + rng.next_double(-0.9, 0.9) * spec.rel);
    b[i] = center * (1.0 + rng.next_double(-0.9, 0.9) * spec.rel);
  }
  const auto ta = make_task(a.data(), a.size());
  const auto tb = make_task(b.data(), b.size());
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const auto& order = sampler.order_for(0, layout);
  for (double p : {1.0, 0.5, 1.0 / 64}) {
    EXPECT_EQ(compute_key(ta, order, p, 9, spec).key,
              compute_key(tb, order, p, 9, spec).key)
        << p;
  }
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  EXPECT_EQ(compute_key(ta, plan, 9, spec).key, compute_key(tb, plan, 9, spec).key);
}

TEST(ToleranceKey, SeparatedCoordinateChangesKey) {
  // Two tasks identical except one sampled coordinate separated by more
  // than a full cell must get different keys (w.h.p. — equality would need
  // a 64-bit XOR coincidence).
  const ToleranceSpec spec{.abs = 1e-3};
  std::vector<double> a(64, 1.0);
  auto b = a;
  b[17] += 3.0 * spec.abs;
  const auto ta = make_task(a.data(), a.size());
  const auto tb = make_task(b.data(), b.size());
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const auto& order = sampler.order_for(0, layout);
  // p = 1: every element (incl. index 17) is sampled.
  EXPECT_NE(compute_key(ta, order, 1.0, 9, spec).key,
            compute_key(tb, order, 1.0, 9, spec).key);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  EXPECT_NE(compute_key(ta, plan, 9, spec).key, compute_key(tb, plan, 9, spec).key);
}

TEST(ToleranceKey, SeedSeparatesKeySpaces) {
  const ToleranceSpec spec{.rel = 1e-3};
  std::vector<double> a(32, 2.5);
  const auto t = make_task(a.data(), a.size());
  InputSampler sampler(true, 1);
  const auto& order = sampler.order_for(0, InputLayout::from_task(t));
  EXPECT_NE(compute_key(t, order, 1.0, 1, spec).key,
            compute_key(t, order, 1.0, 2, spec).key);
}

TEST(ToleranceKey, FingerprintChangesWithEpsilon) {
  const ToleranceSpec a{.rel = 1e-3};
  const ToleranceSpec b{.rel = 2e-3};
  const ToleranceSpec c{.abs = 1e-3};
  EXPECT_NE(a.fingerprint(), 0u);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(ToleranceSpec{}.fingerprint(), 0u);
}

// --- key level: plan path and order path agree -----------------------------

TEST(ToleranceKey, PlanAndOrderPathsAgreeOnFullKeyResult) {
  // The Zobrist XOR digest is gather-order independent: for every p, both
  // paths must produce the same primary key AND the same probe list — the
  // engine may mix them (plan cache hit vs cold order path) freely.
  const ToleranceSpec spec{.rel = 1e-3, .probes = 4};
  Rng rng(kSeed + 7);
  for (int round = 0; round < 8; ++round) {
    std::vector<double> a(16 + rng.next_below(200));
    for (auto& v : a) v = rng.next_double(-100.0, 100.0);
    const auto t = make_task(a.data(), a.size());
    InputSampler sampler(round % 2 == 0, 1 + round);
    const auto layout = InputLayout::from_task(t);
    const auto& order = sampler.order_for(0, layout);
    for (double p : {1.0, 0.5, 0.25, 1.0 / 128}) {
      const auto via_order = compute_key(t, order, p, 9, spec);
      const auto via_plan = compute_key(t, sampler.plan_for(0, layout, p), 9, spec);
      EXPECT_EQ(via_order.key, via_plan.key) << round << " p=" << p;
      EXPECT_EQ(via_order.bytes_hashed, via_plan.bytes_hashed) << round << " p=" << p;
      ASSERT_EQ(via_order.probe_count, via_plan.probe_count) << round << " p=" << p;
      for (unsigned i = 0; i < via_order.probe_count; ++i) {
        EXPECT_EQ(via_order.probes[i], via_plan.probes[i]) << round << " p=" << p;
      }
    }
  }
}

TEST(ToleranceKey, MultiRegionPlanAndOrderAgree) {
  const ToleranceSpec spec{.abs = 1e-2, .probes = 8};
  std::vector<double> x(31), y(17);
  std::vector<float> z(53);
  Rng rng(kSeed + 8);
  for (auto& v : x) v = rng.next_double(-5.0, 5.0);
  for (auto& v : y) v = rng.next_double(-5.0, 5.0);
  for (auto& v : z) v = rng.next_float(-5.0f, 5.0f);
  rt::Task t;
  t.accesses.push_back(rt::in(x.data(), x.size()));
  t.accesses.push_back(rt::in(z.data(), z.size()));
  t.accesses.push_back(rt::in(y.data(), y.size()));
  InputSampler sampler(true, 3);
  const auto layout = InputLayout::from_task(t);
  const auto& order = sampler.order_for(0, layout);
  for (double p : {1.0, 0.3, 1.0 / 64}) {
    const auto via_order = compute_key(t, order, p, 9, spec);
    const auto via_plan = compute_key(t, sampler.plan_for(0, layout, p), 9, spec);
    EXPECT_EQ(via_order.key, via_plan.key) << p;
    ASSERT_EQ(via_order.probe_count, via_plan.probe_count) << p;
    for (unsigned i = 0; i < via_order.probe_count; ++i) {
      EXPECT_EQ(via_order.probes[i], via_plan.probes[i]) << p;
    }
  }
}

// --- multi-probe: neighbor containment -------------------------------------

TEST(ToleranceProbe, NearBoundaryProbesContainNeighborPrimaryKey) {
  // Task A has one element just below a cell boundary; task B is identical
  // except that element sits just above it. A's probe list must contain B's
  // primary key (and vice versa): the multi-probe lookup finds the entry a
  // jittered twin published one cell over.
  const ToleranceSpec spec{.abs = 1e-3, .probes = 4};
  std::vector<double> a(32, 10.0);  // 10.0 = 5000 * 2e-3: dead center, stable
  auto b = a;
  const double boundary = 2.0 * spec.abs * 7.5;  // between cells 7 and 8
  a[5] = boundary - 0.1 * spec.abs;
  b[5] = boundary + 0.1 * spec.abs;
  const auto ta = make_task(a.data(), a.size());
  const auto tb = make_task(b.data(), b.size());
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  const auto ka = compute_key(ta, plan, 9, spec);
  const auto kb = compute_key(tb, plan, 9, spec);
  ASSERT_NE(ka.key, kb.key);
  ASSERT_GT(ka.probe_count, 0u);
  ASSERT_GT(kb.probe_count, 0u);
  bool a_probes_b = false;
  for (unsigned i = 0; i < ka.probe_count; ++i) a_probes_b |= ka.probes[i] == kb.key;
  bool b_probes_a = false;
  for (unsigned i = 0; i < kb.probe_count; ++i) b_probes_a |= kb.probes[i] == ka.key;
  EXPECT_TRUE(a_probes_b);
  EXPECT_TRUE(b_probes_a);
}

TEST(ToleranceProbe, ProbeCountRespectsSpecAndCandidates) {
  const double step = 2e-3;  // cell width for abs = 1e-3
  std::vector<double> a(64);
  // Every element sits at 0.4 cell widths off its center — inside the probe
  // band, so all 64 are candidates and the top-K ranking caps the list.
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = (static_cast<double>(i) + 0.4) * step;
  }
  const auto t = make_task(a.data(), a.size());
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(t);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  for (unsigned probes : {0u, 1u, 4u, 8u, 100u}) {
    const ToleranceSpec spec{.abs = 1e-3, .probes = probes};
    const auto k = compute_key(t, plan, 9, spec);
    // 64 candidates are available, so the list fills to the clamped cap.
    EXPECT_EQ(k.probe_count, spec.clamped_probes()) << probes;
    // Each probe key differs from the primary (it flips one cell).
    for (unsigned i = 0; i < k.probe_count; ++i) EXPECT_NE(k.probes[i], k.key);
  }
}

TEST(ToleranceProbe, CenteredElementsEmitNoProbes) {
  // Every element exactly at a cell center (|frac| = 0 < the probe band):
  // no probe candidates at all.
  const ToleranceSpec spec{.abs = 0.5, .probes = 8};
  std::vector<double> a(32);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);  // centers
  const auto t = make_task(a.data(), a.size());
  InputSampler sampler(true, 1);
  const GatherPlan& plan = sampler.plan_for(0, InputLayout::from_task(t), 1.0);
  EXPECT_EQ(compute_key(t, plan, 9, spec).probe_count, 0u);
}

// --- integers under tolerance: exact per-element cells ---------------------

TEST(ToleranceKey, IntegerElementsStayExact) {
  const ToleranceSpec spec{.rel = 0.5, .probes = 4};  // huge epsilon
  std::vector<std::int32_t> a(64, 41);
  auto b = a;
  b[9] = 42;  // off by one: integers never quantize, keys must differ
  rt::Task ta, tb;
  ta.accesses.push_back(rt::in(a.data(), a.size()));
  tb.accesses.push_back(rt::in(b.data(), b.size()));
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const auto& order = sampler.order_for(0, layout);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  EXPECT_NE(compute_key(ta, order, 1.0, 9, spec).key,
            compute_key(tb, order, 1.0, 9, spec).key);
  // Identical integer tasks agree across both paths.
  const auto ka = compute_key(ta, order, 1.0, 9, spec);
  EXPECT_EQ(ka.key, compute_key(ta, plan, 9, spec).key);
  EXPECT_EQ(ka.probe_count, 0u);  // integers are never probe candidates
}

TEST(ToleranceKey, Float32ElementsQuantize) {
  const ToleranceSpec spec{.rel = 1e-3};
  const double ratio = (1.0 + spec.rel) * (1.0 + spec.rel);
  std::vector<float> a(64);
  // Anchor every value at a cell center (an arbitrary offset can sit close
  // enough to a boundary for even a tiny jitter to cross it).
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::pow(ratio, static_cast<int>(i) - 32));
  }
  auto b = a;
  for (auto& v : b) v *= 1.0f + 1e-5f;  // well inside the 1e-3 cell half-width
  rt::Task ta, tb;
  ta.accesses.push_back(rt::in(a.data(), a.size()));
  tb.accesses.push_back(rt::in(b.data(), b.size()));
  InputSampler sampler(true, 1);
  const auto layout = InputLayout::from_task(ta);
  const GatherPlan& plan = sampler.plan_for(0, layout, 1.0);
  EXPECT_EQ(compute_key(ta, plan, 9, spec).key, compute_key(tb, plan, 9, spec).key);
  // The exact digest disagrees on the same inputs — the point of the mode.
  EXPECT_NE(compute_key(ta, plan, 9).key, compute_key(tb, plan, 9).key);
}

}  // namespace
}  // namespace atm

// Tests for the storage layer (src/store/): the packbits RLE codec, the
// sharded byte-budgeted L2 capacity store, and the versioned + checksummed
// snapshot format behind --save-store/--load-store.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "store/l2_store.hpp"
#include "store/rle_codec.hpp"
#include "store/snapshot_io.hpp"

namespace atm::store {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
  return bytes;
}

MemoEntry make_entry(std::uint32_t type_id, std::uint64_t hash, double p,
                     std::vector<std::uint8_t> payload, std::uint64_t creator = 7) {
  MemoEntry e;
  e.key = {type_id, hash, p};
  e.creator = creator;
  MemoRegion r;
  r.raw_bytes = payload.size();
  r.elem = 8;  // rt::ElemType::F32 tag; opaque to the store
  r.data = std::move(payload);
  e.regions.push_back(std::move(r));
  return e;
}

// --- RLE codec -------------------------------------------------------------

TEST(RleCodec, RoundtripRuns) {
  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), 500, 0xAB);
  bytes.push_back(0x01);
  bytes.insert(bytes.end(), 3, 0xCD);
  std::vector<std::uint8_t> encoded;
  rle_encode(bytes, &encoded);
  EXPECT_LT(encoded.size(), bytes.size());
  std::vector<std::uint8_t> decoded;
  ASSERT_TRUE(rle_decode(encoded, bytes.size(), &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(RleCodec, RoundtripRandom) {
  const auto bytes = pattern_bytes(4096, 0x1234);
  std::vector<std::uint8_t> encoded;
  rle_encode(bytes, &encoded);
  std::vector<std::uint8_t> decoded;
  ASSERT_TRUE(rle_decode(encoded, bytes.size(), &decoded));
  EXPECT_EQ(decoded, bytes);
}

TEST(RleCodec, RoundtripEmptyAndTiny) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    std::vector<std::uint8_t> bytes(n, 0x42);
    std::vector<std::uint8_t> encoded, decoded;
    rle_encode(bytes, &encoded);
    ASSERT_TRUE(rle_decode(encoded, n, &decoded));
    EXPECT_EQ(decoded, bytes);
  }
}

TEST(RleCodec, DecodeRejectsMalformedStreams) {
  std::vector<std::uint8_t> decoded;
  // Literal control byte promising more bytes than the stream holds.
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x05, 0x01}, 6, &decoded));
  // Run control byte with no value byte.
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x80}, 2, &decoded));
  // Decodes past the expected size.
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0xFF, 0x00}, 2, &decoded));
}

TEST(RleCodec, EncodeRegionFallsBackToRawWhenIncompressible) {
  MemoRegion region;
  region.data = pattern_bytes(512, 0x777);
  region.raw_bytes = region.data.size();
  EXPECT_FALSE(encode_region(&region));  // random bytes do not shrink
  EXPECT_EQ(region.encoding, RegionEncoding::Raw);

  MemoRegion runs;
  runs.data.assign(4096, 0x00);
  runs.raw_bytes = runs.data.size();
  EXPECT_TRUE(encode_region(&runs));
  EXPECT_EQ(runs.encoding, RegionEncoding::Rle);
  EXPECT_LT(runs.data.size(), std::size_t{4096});
  ASSERT_TRUE(decode_region(&runs));
  EXPECT_EQ(runs.data, std::vector<std::uint8_t>(4096, 0x00));
}

// --- L2 capacity store -----------------------------------------------------

TEST(L2Store, PutGetTakeRoundtrip) {
  L2CapacityStore store({.budget_bytes = 1 << 20, .log2_shards = 2});
  const auto payload = pattern_bytes(256, 0x1);
  store.put(make_entry(3, 0xABC, 0.5, payload, 42));
  EXPECT_EQ(store.entry_count(), 1u);

  MemoEntry out;
  ASSERT_TRUE(store.get({3, 0xABC, 0.5}, &out));
  EXPECT_EQ(out.creator, 42u);
  ASSERT_EQ(out.regions.size(), 1u);
  EXPECT_EQ(out.regions[0].data, payload);
  EXPECT_EQ(store.entry_count(), 1u);  // get() copies

  EXPECT_FALSE(store.get({3, 0xABC, 1.0}, &out));  // p participates in the key
  EXPECT_FALSE(store.get({4, 0xABC, 0.5}, &out));  // so does the type

  ASSERT_TRUE(store.take({3, 0xABC, 0.5}, &out));
  EXPECT_EQ(out.regions[0].data, payload);
  EXPECT_EQ(store.entry_count(), 0u);  // take() removes (promotion)
  EXPECT_FALSE(store.get({3, 0xABC, 0.5}, &out));
}

TEST(L2Store, FifoEvictionHoldsByteBudget) {
  // One shard, tiny budget: only the newest few entries survive.
  L2CapacityStore store({.budget_bytes = 4096, .log2_shards = 0});
  for (std::uint64_t k = 0; k < 16; ++k) {
    store.put(make_entry(0, k, 1.0, pattern_bytes(1024, k)));
  }
  EXPECT_LE(store.memory_bytes(), std::size_t{4096});
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_GE(store.entry_count(), 1u);
  MemoEntry out;
  EXPECT_FALSE(store.get({0, 0, 1.0}, &out));   // oldest evicted first
  EXPECT_TRUE(store.get({0, 15, 1.0}, &out));   // newest survives
}

TEST(L2Store, OversizedEntryIsRejectedNotCached) {
  L2CapacityStore store({.budget_bytes = 1024, .log2_shards = 0});
  store.put(make_entry(0, 1, 1.0, pattern_bytes(64, 1)));
  store.put(make_entry(0, 2, 1.0, pattern_bytes(8192, 2)));  // > whole budget
  MemoEntry out;
  EXPECT_TRUE(store.get({0, 1, 1.0}, &out));   // resident entry untouched
  EXPECT_FALSE(store.get({0, 2, 1.0}, &out));
}

TEST(L2Store, RefreshReplacesPayloadWithoutGrowth) {
  L2CapacityStore store({.budget_bytes = 1 << 20, .log2_shards = 1});
  store.put(make_entry(0, 9, 1.0, pattern_bytes(128, 1), 10));
  store.put(make_entry(0, 9, 1.0, pattern_bytes(64, 2), 20));
  EXPECT_EQ(store.entry_count(), 1u);
  MemoEntry out;
  ASSERT_TRUE(store.get({0, 9, 1.0}, &out));
  EXPECT_EQ(out.creator, 20u);
  EXPECT_EQ(out.regions[0].data.size(), 64u);
}

TEST(L2Store, RefreshEnforcesBudgetToo) {
  // The budget bounds entry cost; the store object's fixed footprint is
  // measured off an empty instance.
  const std::size_t base =
      L2CapacityStore({.budget_bytes = 4096, .log2_shards = 0}).memory_bytes();
  L2CapacityStore store({.budget_bytes = 4096, .log2_shards = 0});
  store.put(make_entry(0, 1, 1.0, pattern_bytes(512, 1)));
  store.put(make_entry(0, 2, 1.0, pattern_bytes(512, 2)));
  // Refresh key 1 with a payload near the whole budget: the other resident
  // entry must evict rather than letting the shard blow past its budget.
  store.put(make_entry(0, 1, 1.0, pattern_bytes(3000, 3)));
  EXPECT_LE(store.memory_bytes(), base + 4096);
  MemoEntry out;
  EXPECT_TRUE(store.get({0, 1, 1.0}, &out));
  // Refresh with a payload no budget could hold: the key is dropped, not
  // stored over budget.
  store.put(make_entry(0, 1, 1.0, pattern_bytes(8192, 4)));
  EXPECT_FALSE(store.get({0, 1, 1.0}, &out));
  EXPECT_LE(store.memory_bytes(), base + 4096);
}

TEST(L2Store, ResetStatsClearsCountersKeepsEntries) {
  L2CapacityStore store({.budget_bytes = 1 << 20, .log2_shards = 0});
  store.put(make_entry(0, 1, 1.0, pattern_bytes(64, 1)));
  MemoEntry out;
  EXPECT_TRUE(store.get({0, 1, 1.0}, &out));
  EXPECT_GT(store.stats().puts, 0u);
  store.reset_stats();
  EXPECT_EQ(store.stats().puts, 0u);
  EXPECT_EQ(store.stats().hits, 0u);
  EXPECT_EQ(store.entry_count(), 1u);  // resident data untouched
}

TEST(L2Store, CompressionRoundtripsThroughTake) {
  L2CapacityStore store({.budget_bytes = 1 << 20, .log2_shards = 0, .compress = true});
  std::vector<std::uint8_t> runs(8192, 0x3C);  // compressible payload
  store.put(make_entry(1, 0x99, 1.0, runs));
  EXPECT_GT(store.stats().compressed_regions, 0u);
  EXPECT_LT(store.payload_bytes(), runs.size());  // stored compressed

  MemoEntry out;
  ASSERT_TRUE(store.take({1, 0x99, 1.0}, &out));
  EXPECT_EQ(out.regions[0].encoding, RegionEncoding::Raw);  // decoded on take
  EXPECT_EQ(out.regions[0].data, runs);
}

TEST(L2Store, ShardsSpreadEntriesAndClearResets) {
  L2CapacityStore store({.budget_bytes = 1 << 20, .log2_shards = 3});
  for (std::uint64_t k = 0; k < 64; ++k) {
    store.put(make_entry(0, k * 0x9E3779B97F4A7C15ull, 1.0, pattern_bytes(32, k)));
  }
  EXPECT_EQ(store.entry_count(), 64u);
  std::size_t visited = 0;
  store.for_each([&visited](const MemoEntry&) { ++visited; });
  EXPECT_EQ(visited, 64u);
  store.clear();
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.payload_bytes(), 0u);
}

// --- snapshot format -------------------------------------------------------

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One file per test case: ctest runs gtest cases as separate parallel
    // processes in the same directory, so a shared fixture path races.
    path_ = std::string("test_store_snapshot_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".atmstore";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  StoreImage sample_image() {
    StoreImage image;
    image.controllers.push_back({.type_id = 0, .steady = true, .p = 0.25,
                                 .trained_tasks = 123});
    image.controllers.push_back({.type_id = 1, .steady = false, .p = 1.0,
                                 .trained_tasks = 4});
    image.l1.push_back(make_entry(0, 0xAA, 0.25, pattern_bytes(96, 5), 11));
    MemoEntry compressed = make_entry(0, 0xBB, 0.25, std::vector<std::uint8_t>(256, 9));
    encode_region(&compressed.regions[0]);
    image.l2.push_back(std::move(compressed));
    return image;
  }

  std::string path_ = "test_store_snapshot.atmstore";
};

TEST_F(SnapshotIoTest, SaveLoadRoundtrip) {
  const StoreImage image = sample_image();
  std::string error;
  ASSERT_TRUE(save(path_, image, &error)) << error;

  const auto loaded = load(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->controllers.size(), 2u);
  EXPECT_EQ(loaded->controllers[0].type_id, 0u);
  EXPECT_TRUE(loaded->controllers[0].steady);
  EXPECT_DOUBLE_EQ(loaded->controllers[0].p, 0.25);
  EXPECT_EQ(loaded->controllers[0].trained_tasks, 123u);
  EXPECT_FALSE(loaded->controllers[1].steady);

  ASSERT_EQ(loaded->l1.size(), 1u);
  EXPECT_EQ(loaded->l1[0].key.hash, 0xAAu);
  EXPECT_EQ(loaded->l1[0].creator, 11u);
  EXPECT_EQ(loaded->l1[0].regions[0].data, image.l1[0].regions[0].data);

  // Compressed regions persist as stored and still decode.
  ASSERT_EQ(loaded->l2.size(), 1u);
  MemoRegion region = loaded->l2[0].regions[0];
  EXPECT_EQ(region.encoding, RegionEncoding::Rle);
  ASSERT_TRUE(decode_region(&region));
  EXPECT_EQ(region.data, std::vector<std::uint8_t>(256, 9));
}

TEST_F(SnapshotIoTest, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(load("no_such_file.atmstore", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(SnapshotIoTest, CorruptedPayloadFailsChecksum) {
  ASSERT_TRUE(save(path_, sample_image()));
  // Flip one payload byte (past the 32-byte header).
  FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 48, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 48, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  std::string error;
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(SnapshotIoTest, TruncatedFileFails) {
  ASSERT_TRUE(save(path_, sample_image()));
  FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  std::string error;
  EXPECT_FALSE(load(path_, &error).has_value());
}

TEST_F(SnapshotIoTest, BadMagicAndVersionFail) {
  ASSERT_TRUE(save(path_, sample_image()));
  {
    FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);  // clobber the magic
    std::fclose(f);
  }
  std::string error;
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  ASSERT_TRUE(save(path_, sample_image()));
  {
    FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);  // version field follows the 8-byte magic
    std::fputc(0x7F, f);
    std::fclose(f);
  }
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(SnapshotIoTest, EmptyImageRoundtrips) {
  ASSERT_TRUE(save(path_, StoreImage{}));
  const auto loaded = load(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->controllers.empty());
  EXPECT_TRUE(loaded->l1.empty());
  EXPECT_TRUE(loaded->l2.empty());
}

// --- corrupted / mismatched snapshot matrix --------------------------------
// A bad warm-start artifact must fail loudly with a precise diagnostic and
// must never partially load (load() parses and verifies the whole image
// before handing anything back).

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Byte-swap a little-endian u32 at `off` in place.
void bswap32_at(std::vector<std::uint8_t>& bytes, std::size_t off) {
  std::swap(bytes[off], bytes[off + 3]);
  std::swap(bytes[off + 1], bytes[off + 2]);
}

TEST_F(SnapshotIoTest, TruncationMatrixEveryPrefixFails) {
  ASSERT_TRUE(save(path_, sample_image()));
  const std::vector<std::uint8_t> original = read_file(path_);
  ASSERT_GT(original.size(), 40u);
  // Every strict prefix must fail: header cuts, payload cuts, off-by-one.
  const std::size_t cuts[] = {0,  1,  7,  8,  11, 15, 23, 31,
                              32, 33, original.size() / 2, original.size() - 1};
  for (const std::size_t cut : cuts) {
    if (cut >= original.size()) continue;
    write_file(path_, {original.begin(), original.begin() + static_cast<long>(cut)});
    std::string error;
    EXPECT_FALSE(load(path_, &error).has_value()) << "cut at " << cut;
    EXPECT_FALSE(error.empty()) << "cut at " << cut;
  }
}

TEST_F(SnapshotIoTest, BitFlipMatrixPayloadFailsChecksum) {
  ASSERT_TRUE(save(path_, sample_image()));
  const std::vector<std::uint8_t> original = read_file(path_);
  constexpr std::size_t kHeaderBytes = 32;
  ASSERT_GT(original.size(), kHeaderBytes);
  // Flip a byte at several payload positions: first, interior, last.
  const std::size_t payload = original.size() - kHeaderBytes;
  for (const std::size_t rel : {std::size_t{0}, payload / 3, payload - 1}) {
    auto corrupt = original;
    corrupt[kHeaderBytes + rel] ^= 0x01;
    write_file(path_, corrupt);
    std::string error;
    EXPECT_FALSE(load(path_, &error).has_value()) << "flip at +" << rel;
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }
}

TEST_F(SnapshotIoTest, ForeignEndiannessFailsWithClearDiagnostic) {
  ASSERT_TRUE(save(path_, sample_image()));
  std::vector<std::uint8_t> foreign = read_file(path_);
  // Emulate a snapshot written on an opposite-endian machine: the version
  // and endianness marker words read back byte-swapped.
  bswap32_at(foreign, 8);   // version
  bswap32_at(foreign, 12);  // endianness marker
  write_file(path_, foreign);
  std::string error;
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find("byte order"), std::string::npos) << error;

  // A corrupt (neither native nor swapped) marker is also rejected.
  ASSERT_TRUE(save(path_, sample_image()));
  std::vector<std::uint8_t> corrupt = read_file(path_);
  corrupt[12] ^= 0x55;
  write_file(path_, corrupt);
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find("endianness marker"), std::string::npos) << error;
}

TEST_F(SnapshotIoTest, ValidateMatchesLoadVerdicts) {
  // validate() is the cheap container-only preflight (atm_run --load-store):
  // it must accept what load() accepts and reject what load() rejects.
  ASSERT_TRUE(save(path_, sample_image()));
  std::string error;
  EXPECT_TRUE(validate(path_, &error)) << error;

  std::vector<std::uint8_t> corrupt = read_file(path_);
  corrupt.back() ^= 0xFF;
  write_file(path_, corrupt);
  EXPECT_FALSE(validate(path_, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_FALSE(validate("no_such_file.atmstore", &error));
}

TEST_F(SnapshotIoTest, WrongVersionDiagnosticNamesBothVersions) {
  ASSERT_TRUE(save(path_, sample_image()));
  std::vector<std::uint8_t> old = read_file(path_);
  old[8] = static_cast<std::uint8_t>(kFormatVersion - 1);  // e.g. a v2 file
  write_file(path_, old);
  std::string error;
  EXPECT_FALSE(load(path_, &error).has_value());
  EXPECT_NE(error.find(std::to_string(kFormatVersion - 1)), std::string::npos) << error;
  EXPECT_NE(error.find(std::to_string(kFormatVersion)), std::string::npos) << error;
}

}  // namespace
}  // namespace atm::store
